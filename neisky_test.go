package neisky_test

import (
	"strings"
	"testing"

	"neisky"
)

func star(n int) *neisky.Graph {
	b := neisky.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

func TestSkylineStar(t *testing.T) {
	g := star(5)
	r := neisky.Skyline(g)
	if len(r) != 1 || r[0] != 0 {
		t.Fatalf("star skyline = %v, want [0]", r)
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	g, err := neisky.LoadDataset("karate", 1)
	if err != nil {
		t.Fatal(err)
	}
	want := neisky.ComputeSkyline(g, neisky.Oracle, neisky.Options{}).Skyline
	for _, algo := range []neisky.Algorithm{
		neisky.FilterRefine, neisky.Base, neisky.TwoHop, neisky.CandidateSet,
	} {
		got := neisky.ComputeSkyline(g, algo, neisky.Options{}).Skyline
		if len(got) != len(want) {
			t.Fatalf("%v returned %d vertices, oracle %d", algo, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v disagrees with oracle", algo)
			}
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range []neisky.Algorithm{
		neisky.FilterRefine, neisky.Base, neisky.TwoHop, neisky.CandidateSet, neisky.Oracle,
	} {
		if a.String() == "" {
			t.Fatal("empty algorithm name")
		}
	}
}

func TestReadEdgeList(t *testing.T) {
	g, err := neisky.ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil || g.N() != 3 || g.M() != 2 {
		t.Fatalf("ReadEdgeList: %v n=%d m=%d", err, g.N(), g.M())
	}
}

func TestDominatesFacade(t *testing.T) {
	g := star(4)
	if !neisky.Dominates(g, 0, 1) || neisky.Dominates(g, 1, 0) {
		t.Fatal("facade Dominates wrong")
	}
	if !neisky.NeighborhoodIncluded(g, 1, 0) {
		t.Fatal("facade NeighborhoodIncluded wrong")
	}
}

func TestCandidatesContainSkyline(t *testing.T) {
	g := neisky.GeneratePowerLaw(300, 900, 2.2, 3)
	r := neisky.Skyline(g)
	c := neisky.Candidates(g, neisky.Options{})
	inC := map[int32]bool{}
	for _, u := range c {
		inC[u] = true
	}
	for _, u := range r {
		if !inC[u] {
			t.Fatalf("skyline vertex %d missing from candidates", u)
		}
	}
}

func TestGroupCentralityFacade(t *testing.T) {
	g := neisky.GeneratePowerLaw(400, 1000, 2.2, 7)
	res := neisky.MaximizeGroupCloseness(g, 5)
	if len(res.Group) != 5 {
		t.Fatalf("group size %d", len(res.Group))
	}
	if v := neisky.GroupValue(g, res.Group, neisky.GroupCloseness); v <= 0 {
		t.Fatalf("group value %v", v)
	}
	resH := neisky.MaximizeGroupHarmonic(g, 5)
	if len(resH.Group) != 5 {
		t.Fatal("harmonic group size")
	}
	if len(neisky.VertexCloseness(g)) != g.N() || len(neisky.VertexHarmonic(g)) != g.N() {
		t.Fatal("vertex centrality lengths")
	}
}

func TestCliqueFacade(t *testing.T) {
	g := neisky.GeneratePowerLaw(400, 1600, 2.1, 9)
	base := neisky.MaxCliqueBase(g)
	sky := neisky.MaxClique(g)
	if len(base.Clique) != len(sky.Clique) {
		t.Fatalf("clique sizes differ: %d vs %d", len(base.Clique), len(sky.Clique))
	}
	if !neisky.IsClique(g, sky.Clique) {
		t.Fatal("not a clique")
	}
	top := neisky.TopKCliques(g, 3)
	topBase := neisky.TopKCliquesBase(g, 3)
	if len(top) != len(topBase) {
		t.Fatalf("top-k counts differ: %d vs %d", len(top), len(topBase))
	}
	for i := range top {
		if len(top[i]) != len(topBase[i]) {
			t.Fatalf("top-k size %d differs: %d vs %d", i, len(top[i]), len(topBase[i]))
		}
	}
	mc := neisky.MaxCliqueContaining(g, sky.Clique[0])
	if len(mc) < len(sky.Clique) {
		t.Fatal("MC through a max-clique member must have max size")
	}
}

func TestSkylineSetFacade(t *testing.T) {
	g := star(6)
	res := neisky.SkylineResult(g, neisky.Options{})
	set := neisky.SkylineSet(res, g.N())
	if !set[0] || set[1] {
		t.Fatalf("skyline set wrong: %v", set)
	}
}

func TestDatasetNamesFacade(t *testing.T) {
	names := neisky.DatasetNames()
	found := false
	for _, n := range names {
		if n == "karate" {
			found = true
		}
	}
	if !found {
		t.Fatal("karate missing from catalog")
	}
	if neisky.Karate().N() != 34 {
		t.Fatal("Karate() wrong")
	}
	if _, err := neisky.LoadDataset("nope", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerators(t *testing.T) {
	if g := neisky.GenerateER(100, 0.1, 1); g.N() != 100 {
		t.Fatal("ER")
	}
	if g := neisky.GenerateBA(100, 2, 1); g.N() != 100 {
		t.Fatal("BA")
	}
}
