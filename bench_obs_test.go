// Observability overhead gate: the Fig 3 hot path (FilterRefineSky plus
// the greedy centrality engine) re-run with the instrumentation's
// disabled fast path and with a live recorder. The acceptance bar is
// "disabled" within 2% of the pre-instrumentation baseline — recording
// off must cost one atomic pointer load per stage and nothing else —
// and TestDisabledNoAllocs in internal/obs pins the zero-allocation
// claim. `make bench-obs` runs this file.
package neisky_test

import (
	"testing"

	"neisky/internal/centrality"
	"neisky/internal/core"
	"neisky/internal/obs"
)

// withRecorder installs r as the process recorder for the duration of
// one sub-benchmark.
func withRecorder(b *testing.B, r *obs.Recorder, fn func(b *testing.B)) {
	b.Helper()
	old := obs.Swap(r)
	defer obs.Swap(old)
	fn(b)
}

// BenchmarkObsOverheadFig3 measures FilterRefineSky on the Fig 3
// representative dataset with recording disabled vs. enabled.
func BenchmarkObsOverheadFig3(b *testing.B) {
	g := benchGraph(b, "youtube-sim", 1)
	core.FilterRefineSky(g, core.Options{}) // warm the hub index
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	}
	b.Run("disabled", func(b *testing.B) { withRecorder(b, nil, run) })
	b.Run("enabled", func(b *testing.B) { withRecorder(b, obs.New(), run) })
}

// BenchmarkObsOverheadGreedy measures the engineered greedy (lazy +
// pruned, batched sweeps) with recording disabled vs. enabled; the
// per-BFS counter publishing is the costliest instrumentation site.
func BenchmarkObsOverheadGreedy(b *testing.B) {
	g := benchGraph(b, "youtube-sim", 0.5)
	opts := centrality.Options{Lazy: true, PrunedBFS: true, Workers: 1}
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.Greedy(g, 5, centrality.CLOSENESS, opts)
		}
	}
	b.Run("disabled", func(b *testing.B) { withRecorder(b, nil, run) })
	b.Run("enabled", func(b *testing.B) { withRecorder(b, obs.New(), run) })
}
