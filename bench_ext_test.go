// Benchmarks for the extension layer: parallel refine, approximate
// skyline, dynamic maintenance, group betweenness and the MIS
// reduction.
package neisky_test

import (
	"testing"

	"neisky"
	"neisky/internal/betweenness"
	"neisky/internal/core"
	"neisky/internal/dynsky"
	"neisky/internal/mis"
	"neisky/internal/rng"
)

// BenchmarkParallelSkyline compares the sequential refine phase with
// 2/4/8-way sharding.
func BenchmarkParallelSkyline(b *testing.B) {
	g := benchGraph(b, "livejournal-sim", 1)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(workersName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParallelFilterRefineSky(g, core.Options{}, w)
			}
		})
	}
}

func workersName(w int) string {
	return map[int]string{2: "par2", 4: "par4", 8: "par8"}[w]
}

// BenchmarkApproxSkyline measures the ε-skyline counting scan at
// several miss budgets.
func BenchmarkApproxSkyline(b *testing.B) {
	g := benchGraph(b, "youtube-sim", 1)
	for _, tc := range []struct {
		name string
		eps  float64
	}{{"eps0", 0}, {"eps02", 0.2}, {"eps04", 0.4}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ApproxSkyline(g, tc.eps, core.Options{})
			}
		})
	}
}

// BenchmarkDynamicMaintenance measures per-update cost of the
// maintainer against the cost of full recomputation.
func BenchmarkDynamicMaintenance(b *testing.B) {
	g := benchGraph(b, "youtube-sim", 0.5)
	b.Run("update", func(b *testing.B) {
		m := dynsky.New(g)
		r := rng.New(7)
		n := m.N()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v {
				continue
			}
			if m.Has(u, v) {
				m.RemoveEdge(u, v)
			} else {
				m.AddEdge(u, v)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	})
}

// BenchmarkGroupBetweenness compares the unrestricted and
// skyline-restricted greedy with sampled sources.
func BenchmarkGroupBetweenness(b *testing.B) {
	g := benchGraph(b, "notredame-sim", 0.3)
	b.Run("BaseGB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			betweenness.BaseGB(g, 2, 16, 1)
		}
	})
	b.Run("NeiSkyGB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			betweenness.NeiSkyGB(g, 2, 16, 1)
		}
	})
}

// BenchmarkMISReduction measures kernelization and the greedy solver.
func BenchmarkMISReduction(b *testing.B) {
	g := benchGraph(b, "wikitalk-sim", 0.5)
	b.Run("reduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.Reduce(g)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mis.Greedy(g)
		}
	})
}

// BenchmarkVertexBetweenness is the Brandes baseline cost.
func BenchmarkVertexBetweenness(b *testing.B) {
	g := neisky.GeneratePowerLaw(1000, 3000, 2.3, 5)
	for i := 0; i < b.N; i++ {
		neisky.VertexBetweenness(g)
	}
}
