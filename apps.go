package neisky

import (
	"neisky/internal/centrality"
	"neisky/internal/clique"
	"neisky/internal/core"
)

// GroupResult reports a greedy group-centrality maximization run.
type GroupResult = centrality.Result

// Measure selects a group centrality (GroupCloseness or GroupHarmonic).
type Measure = centrality.Measure

// Group centrality measures (paper Definitions 6–9).
const (
	GroupCloseness = centrality.CLOSENESS
	GroupHarmonic  = centrality.HARMONIC
)

// MaximizeGroupCloseness greedily selects a k-vertex group with
// (approximately) maximum group closeness, using lazy evaluation,
// pruned incremental BFS, and the neighborhood-skyline candidate
// pruning of Algorithm 4 (NeiSkyGC).
func MaximizeGroupCloseness(g *Graph, k int) *GroupResult {
	return centrality.NeiSkyGC(g, k)
}

// MaximizeGroupHarmonic is the harmonic-centrality counterpart
// (NeiSkyGH).
func MaximizeGroupHarmonic(g *Graph, k int) *GroupResult {
	return centrality.NeiSkyGH(g, k)
}

// MaximizeGroupCentrality exposes the full engine: measure, candidate
// restriction (nil = all vertices) and engineering toggles.
func MaximizeGroupCentrality(g *Graph, k int, m Measure, opts centrality.Options) *GroupResult {
	return centrality.Greedy(g, k, m, opts)
}

// GroupValue evaluates GC(S) or GH(S) exactly.
func GroupValue(g *Graph, s []int32, m Measure) float64 {
	return centrality.GroupValue(g, s, m)
}

// VertexCloseness computes every vertex's closeness centrality
// (Definition 6). O(n·m); intended for moderate graphs.
func VertexCloseness(g *Graph) []float64 { return centrality.VertexCloseness(g) }

// VertexHarmonic computes every vertex's harmonic centrality
// (Definition 8).
func VertexHarmonic(g *Graph) []float64 { return centrality.VertexHarmonic(g) }

// CliqueResult reports a maximum-clique computation.
type CliqueResult = clique.Result

// MaxClique computes a maximum clique with the skyline-seeded
// branch-and-bound of Algorithm 5 (NeiSkyMC).
func MaxClique(g *Graph) *CliqueResult { return clique.NeiSkyMC(g) }

// MaxCliqueBase computes a maximum clique without skyline pruning
// (degeneracy-ordered branch-and-bound, BaseMCC).
func MaxCliqueBase(g *Graph) *CliqueResult { return clique.BaseMCC(g) }

// MaxCliqueContaining returns a maximum clique that contains u.
func MaxCliqueContaining(g *Graph, u int32) []int32 {
	return clique.MaxContaining(g, u)
}

// TopKCliques returns the k largest distinct maximum cliques using the
// skyline candidate-release strategy (NeiSkyTopkMCC).
func TopKCliques(g *Graph, k int) [][]int32 {
	return clique.NeiSkyTopkMCC(g, k).Cliques
}

// TopKCliquesBase is the unpruned baseline (BaseTopkMCC): it computes a
// maximum clique through every vertex.
func TopKCliquesBase(g *Graph, k int) [][]int32 {
	return clique.BaseTopkMCC(g, k).Cliques
}

// IsClique verifies that verts forms a clique in g.
func IsClique(g *Graph, verts []int32) bool { return clique.IsClique(g, verts) }

// SkylineSet converts a Result into a membership bitmap.
func SkylineSet(res *Result, n int) []bool { return core.SkylineSet(res, n) }

// MaximalCliques enumerates all maximal cliques (Bron–Kerbosch with
// pivoting over a degeneracy ordering). Use EnumerateMaximalCliques for
// streaming with early stop.
func MaximalCliques(g *Graph) [][]int32 { return clique.MaximalCliques(g) }

// EnumerateMaximalCliques streams maximal cliques to visit; return
// false to stop early. It returns the number of cliques emitted.
func EnumerateMaximalCliques(g *Graph, visit func([]int32) bool) int {
	return clique.EnumerateMaximal(g, visit)
}

// CoreNumbers computes every vertex's k-core number.
func CoreNumbers(g *Graph) []int32 { return clique.CoreNumbers(g) }

// Degeneracy returns a smallest-degree-last vertex ordering, its
// inverse permutation, and the graph's degeneracy.
func Degeneracy(g *Graph) (order, pos []int32, degeneracy int) {
	return clique.Degeneracy(g)
}
