// Package neisky is a from-scratch Go implementation of the ICDE 2023
// paper "Neighborhood Skyline on Graphs: Concepts, Algorithms and
// Applications" (Zhang, Li, Qin, Dai, Yuan, Wang).
//
// A vertex u dominates v (written v ≤ u) when all of v's neighbors are
// also adjacent to u (N(v) ⊆ N[u]) and the reverse does not hold — or
// holds mutually with u having the smaller ID. The neighborhood skyline
// is the set of vertices dominated by nobody. The package computes
// skylines with the paper's filter-refine framework and applies them to
// speed up group closeness/harmonic maximization and maximum clique
// search.
//
// Quick start:
//
//	g := neisky.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
//	r := neisky.Skyline(g) // → [0]: the star center dominates the leaves
//
// The heavy lifting lives in internal packages; this package is the
// stable public surface.
package neisky

import (
	"io"
	"os"

	"neisky/internal/core"
	"neisky/internal/graph"
	"neisky/internal/serve"
)

// Graph is an immutable undirected simple graph in CSR form. Build one
// with NewBuilder, FromEdges or ReadEdgeList.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Stats summarizes a graph (n, m, max and average degree).
type Stats = graph.Stats

// Options tunes the skyline algorithms; the zero value matches the
// paper's defaults. See the field docs in internal/core.
type Options = core.Options

// Result is the output of a skyline computation: the skyline itself,
// the per-vertex dominator array and (for filter-based algorithms) the
// candidate set, plus work counters.
type Result = core.Result

// NewBuilder returns a graph builder with capacity for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an explicit edge list. Self-loops are
// dropped and parallel edges deduplicated.
func FromEdges(n int, edges [][2]int32) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// '#'/'%' comments allowed) and compacts vertex IDs.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// Mapped is a Graph backed by an mmap'd binary snapshot. It embeds
// *Graph, so it works with every algorithm in the package; Close it
// when done.
type Mapped = graph.Mapped

// OpenMmap maps a v2 binary snapshot as a zero-copy read-only Graph
// (heap-loaded on platforms without mmap support). See
// internal/graph.OpenMmap for the validation and lifecycle contract.
func OpenMmap(path string) (*Mapped, error) { return graph.OpenMmap(path) }

// LoadBinaryFile heap-loads a binary snapshot (either format version).
func LoadBinaryFile(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// IsBinarySnapshot reports whether path starts with the binary snapshot
// magic, distinguishing snapshots from text edge lists.
func IsBinarySnapshot(path string) bool { return graph.IsBinarySnapshot(path) }

// LoadGraphFile loads a graph from path, auto-detecting the format: a
// binary snapshot is heap-loaded (or mmap'd when useMmap is set and the
// snapshot is v2), anything else is parsed as a text edge list. The
// returned closer is non-nil exactly when the graph aliases a mapping
// and must be closed after use.
func LoadGraphFile(path string, useMmap bool) (*Graph, *Mapped, error) {
	if graph.IsBinarySnapshot(path) {
		if useMmap {
			mg, err := graph.OpenMmap(path)
			if err != nil {
				return nil, nil, err
			}
			return mg.Graph, mg, nil
		}
		g, err := graph.LoadBinaryFile(path)
		return g, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	return g, nil, err
}

// ServeSnapshot is one immutable generation of a served graph: the
// graph itself, an optional closer for mmap-backed snapshots, and a
// provenance name reported by /v1/stats.
type ServeSnapshot = serve.Snapshot

// ServeOptions tunes the serving daemon (per-query timeout/budget caps,
// response list caps, debug-mux mounting).
type ServeOptions = serve.Options

// Server is the skyline-as-a-service HTTP query layer: concurrent
// /v1/skyline, /v1/centrality/group, /v1/clique and /v1/dominators
// queries against an epoch-managed snapshot store with RCU-style
// atomic swaps. See cmd/nsserve and the README "Serving" section.
type Server = serve.Server

// NewServer builds a serving layer over snap. Expose Handler() on an
// http.Server; after that server has shut down, Close() retires every
// epoch (blocking until in-flight pins drain).
func NewServer(snap *ServeSnapshot, opts ServeOptions) *Server {
	return serve.New(snap, opts)
}

// NewServeSnapshot wraps an in-memory graph as a serving snapshot.
func NewServeSnapshot(g *Graph, name string) *ServeSnapshot {
	return &serve.Snapshot{Graph: g, Name: name}
}

// Skyline computes the neighborhood skyline of g with the paper's
// FilterRefineSky algorithm (Algorithm 3) under default options, and
// returns the skyline vertices in increasing ID order.
func Skyline(g *Graph) []int32 {
	return core.FilterRefineSky(g, core.Options{}).Skyline
}

// SkylineResult is Skyline with explicit options and the full Result.
func SkylineResult(g *Graph, opts Options) *Result {
	return core.FilterRefineSky(g, opts)
}

// Algorithm names a skyline computation strategy for ComputeSkyline.
type Algorithm int

const (
	// FilterRefine is Algorithm 3, the paper's main contribution.
	FilterRefine Algorithm = iota
	// Base is Algorithm 1 (BaseSky), the 2-hop counting baseline.
	Base
	// TwoHop materializes all 2-hop neighborhoods first (Base2Hop).
	TwoHop
	// CandidateSet runs the filter phase then BaseSky on C (BaseCSet).
	CandidateSet
	// Oracle is the quadratic brute force straight from the definition.
	Oracle
)

func (a Algorithm) String() string {
	switch a {
	case FilterRefine:
		return "FilterRefineSky"
	case Base:
		return "BaseSky"
	case TwoHop:
		return "Base2Hop"
	case CandidateSet:
		return "BaseCSet"
	default:
		return "BruteForce"
	}
}

// ComputeSkyline runs the chosen algorithm. All algorithms return
// identical skylines; they differ in time and memory profile.
func ComputeSkyline(g *Graph, algo Algorithm, opts Options) *Result {
	switch algo {
	case Base:
		return core.BaseSky(g, opts)
	case TwoHop:
		return core.Base2Hop(g, opts)
	case CandidateSet:
		return core.BaseCSet(g, opts)
	case Oracle:
		return core.BruteForce(g)
	default:
		return core.FilterRefineSky(g, opts)
	}
}

// Candidates computes the edge-constrained candidate set C of
// Algorithm 2 (FilterPhase). The skyline is always a subset of C
// (Lemma 1).
func Candidates(g *Graph, opts Options) []int32 {
	return core.FilterCandidates(g, opts)
}

// Dominates reports Definition 2: whether u dominates v in g.
func Dominates(g *Graph, u, v int32) bool { return core.Dominates(g, u, v) }

// NeighborhoodIncluded reports Definition 1: N(v) ⊆ N[u].
func NeighborhoodIncluded(g *Graph, v, u int32) bool {
	return core.NeighborhoodIncluded(g, v, u)
}
