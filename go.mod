module neisky

go 1.22
