package neisky_test

import (
	"path/filepath"
	"sort"
	"testing"

	"neisky"
	"neisky/internal/gen"
	"neisky/internal/graph"
)

// Relabeling is an isomorphism, so every algorithm's answer on the
// relabeled graph must map back to the original answer through the id
// maps. These are the integration-level invariants behind snapshot
// relabeling (nsgen -relabel): whatever you compute on a relabeled
// snapshot is the original result under renamed vertices.

func sortedCopy(vs []int32) []int32 {
	out := append([]int32(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b []int32) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRelabelInvariance(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		g := gen.PowerLaw(3000, 12000, 2.3, seed)
		rel, _, newToOld := g.RelabelByDegree()

		// Skyline: exact set equality after mapping back.
		orig := neisky.Skyline(g)
		mapped := graph.MapVertices(neisky.Skyline(rel), newToOld)
		if !equalSets(orig, mapped) {
			t.Fatalf("seed %d: relabeled skyline maps to %d vertices, original has %d",
				seed, len(mapped), len(orig))
		}

		// Closeness: per-vertex values are label-independent (integer
		// distance sums, one division — exact equality holds).
		co, cr := neisky.VertexCloseness(g), neisky.VertexCloseness(rel)
		for x := range cr {
			if cr[x] != co[newToOld[x]] {
				t.Fatalf("seed %d: closeness of new id %d (%g) differs from original vertex %d (%g)",
					seed, x, cr[x], newToOld[x], co[newToOld[x]])
			}
		}

		// Maximum clique: same size, and the mapped-back vertex set is a
		// genuine clique in the original graph (the witness itself may
		// legitimately differ between isomorphic runs).
		ko, kr := neisky.MaxClique(g), neisky.MaxClique(rel)
		back := graph.MapVertices(kr.Clique, newToOld)
		if len(back) != len(ko.Clique) {
			t.Fatalf("seed %d: clique size %d on relabeled graph, %d on original",
				seed, len(kr.Clique), len(ko.Clique))
		}
		if !neisky.IsClique(g, back) {
			t.Fatalf("seed %d: mapped-back clique is not a clique in the original graph", seed)
		}
	}
}

// TestStreamConvertMmapSkyline is the pipeline smoke test behind the
// scale benchmark: generator → shuffle → bounded-memory converter →
// mmap → skyline, cross-checked against the fully in-memory path, with
// and without relabeling.
func TestStreamConvertMmapSkyline(t *testing.T) {
	const n, m = 20000, 60000
	const seed = 7
	dir := t.TempDir()

	// In-memory oracle over the identical shuffled edge stream.
	b := neisky.NewBuilder(n)
	collect := gen.ShuffledLabels(n, seed, func(u, v int32) error {
		b.AddEdge(u, v)
		return nil
	})
	if err := gen.StreamChungLu(n, m, 2.5, seed, collect); err != nil {
		t.Fatal(err)
	}
	want := b.Build()
	wantSky := neisky.Skyline(want)

	src := func(emit func(u, v int32) error) error {
		return gen.StreamChungLu(n, m, 2.5, seed, gen.ShuffledLabels(n, seed, emit))
	}

	// Relabel off: the mapped graph must equal the oracle exactly.
	plain := filepath.Join(dir, "plain.nsb2")
	if _, err := graph.ConvertEdges(src, plain, graph.ConvertOptions{N: n, BufferPairs: 1 << 14}); err != nil {
		t.Fatal(err)
	}
	mg, err := neisky.OpenMmap(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	if mg.N() != want.N() || mg.M() != want.M() {
		t.Fatalf("converted snapshot n=%d m=%d, oracle n=%d m=%d", mg.N(), mg.M(), want.N(), want.M())
	}
	if got := neisky.Skyline(mg.Graph); !equalSets(got, wantSky) {
		t.Fatalf("mmap skyline has %d vertices, in-memory oracle %d", len(got), len(wantSky))
	}

	// Relabel on: skyline maps back through the degree-descending perm.
	rel := filepath.Join(dir, "rel.nsb2")
	if _, err := graph.ConvertEdges(src, rel, graph.ConvertOptions{N: n, Relabel: true, BufferPairs: 1 << 14}); err != nil {
		t.Fatal(err)
	}
	rg, err := neisky.OpenMmap(rel)
	if err != nil {
		t.Fatal(err)
	}
	defer rg.Close()
	if rg.Flags()&graph.FlagDegreeRelabeled == 0 {
		t.Fatal("relabeled snapshot lost its flag")
	}
	_, newToOld := want.DegreeDescendingPerm()
	if got := graph.MapVertices(neisky.Skyline(rg.Graph), newToOld); !equalSets(got, wantSky) {
		t.Fatalf("relabeled mmap skyline does not map back to the oracle (%d vs %d vertices)",
			len(got), len(wantSky))
	}
}
