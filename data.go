package neisky

import (
	"neisky/internal/dataset"
	"neisky/internal/gen"
)

// LoadDataset materializes a named dataset from the built-in catalog
// (see DatasetNames). Synthetic stand-ins accept a size scale; embedded
// graphs ignore it.
func LoadDataset(name string, scale float64) (*Graph, error) {
	return dataset.Load(name, scale)
}

// DatasetNames lists the catalog: the Table I stand-ins plus the
// embedded case-study graphs.
func DatasetNames() []string { return dataset.Names() }

// Karate returns Zachary's karate club network (exact, 34/78).
func Karate() *Graph { return dataset.Karate() }

// GenerateER samples an Erdős–Rényi G(n, p) graph deterministically.
func GenerateER(n int, p float64, seed uint64) *Graph { return gen.ER(n, p, seed) }

// GeneratePowerLaw samples a Chung–Lu power-law graph with ~m edges and
// exponent beta.
func GeneratePowerLaw(n, m int, beta float64, seed uint64) *Graph {
	return gen.PowerLaw(n, m, beta, seed)
}

// GenerateBA grows a Barabási–Albert graph with k attachments per
// vertex.
func GenerateBA(n, k int, seed uint64) *Graph { return gen.BA(n, k, seed) }
