package neisky

import (
	"context"

	"neisky/internal/betweenness"
	"neisky/internal/centrality"
	"neisky/internal/clique"
	"neisky/internal/core"
	"neisky/internal/mis"
	"neisky/internal/runctl"
	"neisky/internal/skytree"
)

// This file is the context-aware surface of the package. Every *Ctx
// function honors cancellation (deadline, explicit cancel, or a work
// budget installed with WithComputeBudget) and returns a best-effort
// partial result instead of discarding work: the result carries
// Truncated = true and an Err recording the cause. See each engine's
// Result docs for the exact anytime contract (skylines degrade to
// not-yet-dominated supersets, branch-and-bound returns its incumbent,
// greedy selections return the committed prefix).
//
// Cancellation is polled at checkpoints in the hot loops — one atomic
// load every few dozen to few thousand iterations — so a context that
// can never fire costs nothing: the engines skip polling entirely when
// the context has no deadline, cancel, or budget attached.

// ErrBudgetExhausted is the cancellation cause when a compute budget
// installed with WithComputeBudget runs out.
var ErrBudgetExhausted = runctl.ErrBudget

// TruncationCause maps a Result's Err to the stable cause strings used
// across the CLIs and the nsserve API: "timeout", "canceled", "budget",
// "panic", the error text otherwise, or "" for nil (a complete run).
func TruncationCause(err error) string { return runctl.CauseString(err) }

// WithComputeBudget returns a context that cancels itself (with cause
// ErrBudgetExhausted) after the wrapped computation has charged
// roughly units checkpoint units of work. Units are engine-specific
// (vertices filtered, BFS nodes dequeued, search-tree nodes expanded)
// but monotone in actual work, so a budget bounds runtime on any input.
func WithComputeBudget(ctx context.Context, units int64) context.Context {
	return runctl.WithBudget(ctx, units)
}

// SkylineCtx is Skyline under a context: FilterRefineSky with default
// options, returning the full Result so callers can observe Truncated.
func SkylineCtx(ctx context.Context, g *Graph) *Result {
	return core.FilterRefineSkyCtx(ctx, g, core.Options{})
}

// SkylineResultCtx is SkylineResult under a context.
func SkylineResultCtx(ctx context.Context, g *Graph, opts Options) *Result {
	return core.FilterRefineSkyCtx(ctx, g, opts)
}

// ComputeSkylineCtx is ComputeSkyline under a context. The Oracle
// algorithm is a correctness reference without cancellation support and
// runs to completion regardless of ctx.
func ComputeSkylineCtx(ctx context.Context, g *Graph, algo Algorithm, opts Options) *Result {
	switch algo {
	case Base:
		return core.BaseSkyCtx(ctx, g, opts)
	case TwoHop:
		return core.Base2HopCtx(ctx, g, opts)
	case CandidateSet:
		return core.BaseCSetCtx(ctx, g, opts)
	case Oracle:
		return core.BruteForce(g)
	default:
		return core.FilterRefineSkyCtx(ctx, g, opts)
	}
}

// SkylineParallelCtx is SkylineParallel under a context. Cancellation
// (and any worker panic, surfaced as Result.Err) stops all workers.
func SkylineParallelCtx(ctx context.Context, g *Graph, opts Options, workers int) *Result {
	return core.ParallelFilterRefineSkyCtx(ctx, g, opts, workers)
}

// SkylineShardedCtx is SkylineSharded under a context, with the same
// anytime superset contract on cancellation as SkylineCtx.
func SkylineShardedCtx(ctx context.Context, g *Graph, opts Options, so ShardOptions) *Result {
	return core.ShardedFilterRefineSkyCtx(ctx, g, opts, so)
}

// BuildSkylineTreeCtx is BuildSkylineTree under a context: a cancelled
// build returns a truncated tree whose assigned layers are final.
func BuildSkylineTreeCtx(ctx context.Context, g *Graph, opts SkylineTreeOptions) *SkylineTree {
	return skytree.BuildCtx(ctx, g, opts)
}

// SubsetSkylineCtx is SubsetSkyline under a context, returning the full
// result (probe counters, truncated-superset markers).
func SubsetSkylineCtx(ctx context.Context, g *Graph, t *SkylineTree, sub []int32) *skytree.SubsetResult {
	return skytree.SubsetSkylineCtx(ctx, g, t, sub)
}

// CandidatesCtx is Candidates under a context; a truncated run returns
// the not-yet-pruned candidate superset.
func CandidatesCtx(ctx context.Context, g *Graph, opts Options) []int32 {
	return core.FilterPhaseCtx(ctx, g, opts).Candidates
}

// AllDominationsCtx is AllDominations under a context; see
// PartialOrder.Truncated.
func AllDominationsCtx(ctx context.Context, g *Graph, opts Options) *PartialOrder {
	return core.AllDominationsCtx(ctx, g, opts)
}

// MaximizeGroupCentralityCtx is MaximizeGroupCentrality under a
// context. On cancellation Group is the prefix of true greedy picks
// committed so far (Truncated/Err set).
func MaximizeGroupCentralityCtx(ctx context.Context, g *Graph, k int, m Measure, opts centrality.Options) *GroupResult {
	return centrality.GreedyCtx(ctx, g, k, m, opts)
}

// MaxCliqueCtx is MaxClique under a context. On cancellation Clique is
// the incumbent: a genuine clique, possibly not maximum.
func MaxCliqueCtx(ctx context.Context, g *Graph) *CliqueResult {
	return clique.NeiSkyMCCtx(ctx, g)
}

// MaxCliqueBaseCtx is MaxCliqueBase under a context.
func MaxCliqueBaseCtx(ctx context.Context, g *Graph) *CliqueResult {
	return clique.BaseMCCCtx(ctx, g)
}

// TopKCliqueResult reports a top-k clique computation, including the
// Truncated/Err anytime markers.
type TopKCliqueResult = clique.TopKResult

// TopKCliquesCtx is TopKCliques under a context, returning the full
// result so callers can observe truncation. Every listed clique is
// genuine even when truncated.
func TopKCliquesCtx(ctx context.Context, g *Graph, k int) *TopKCliqueResult {
	return clique.NeiSkyTopkMCCCtx(ctx, g, k)
}

// MaxIndependentSetCtx is MaxIndependentSet under a context, returning
// the full result; on cancellation Set is the incumbent independent
// set.
func MaxIndependentSetCtx(ctx context.Context, g *Graph) *mis.Result {
	return mis.MaxCtx(ctx, g)
}

// IndependentSetGreedyCtx is IndependentSetGreedy under a context.
func IndependentSetGreedyCtx(ctx context.Context, g *Graph) *mis.Result {
	return mis.GreedyCtx(ctx, g)
}

// MaximizeGroupBetweennessCtx is MaximizeGroupBetweenness under a
// context, returning the full result. The skyline phase and the greedy
// rounds both honor ctx; a skyline truncated mid-phase is still a sound
// (superset) candidate pool.
func MaximizeGroupBetweennessCtx(ctx context.Context, g *Graph, k, sources int, seed uint64) *betweenness.Result {
	return betweenness.NeiSkyGBCtx(ctx, g, k, sources, seed)
}
