// Group centrality example: pick a k-vertex "service placement" on a
// social-network stand-in, the paper's motivating application for group
// closeness/harmonic maximization (leader selection, resource
// allocation, influence seeding).
//
// Shows the skyline pruning's effect directly: the skyline-restricted
// greedy evaluates far fewer marginal gains yet matches the
// unrestricted greedy's group quality.
package main

import (
	"fmt"
	"time"

	"neisky"
	"neisky/internal/centrality"
)

func main() {
	g, err := neisky.LoadDataset("youtube-sim", 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Println("graph:", g.Stats())
	k := 10

	skyline := neisky.Skyline(g)
	fmt.Printf("skyline: %d of %d vertices (%.0f%% pruned)\n",
		len(skyline), g.N(), 100*(1-float64(len(skyline))/float64(g.N())))

	for _, m := range []neisky.Measure{neisky.GroupCloseness, neisky.GroupHarmonic} {
		fmt.Printf("\n-- group %v maximization, k=%d --\n", m, k)

		start := time.Now()
		base := neisky.MaximizeGroupCentrality(g, k, m,
			centrality.Options{Lazy: true, PrunedBFS: true})
		baseT := time.Since(start)

		start = time.Now()
		sky := neisky.MaximizeGroupCentrality(g, k, m,
			centrality.Options{Candidates: skyline, Lazy: true, PrunedBFS: true})
		skyT := time.Since(start)

		fmt.Printf("unrestricted greedy: value=%.4f gain-calls=%d time=%s\n",
			base.Value, base.GainCalls, baseT.Round(time.Millisecond))
		fmt.Printf("skyline greedy:      value=%.4f gain-calls=%d time=%s\n",
			sky.Value, sky.GainCalls, skyT.Round(time.Millisecond))
		fmt.Printf("group: %v\n", sky.Group)

		// Evaluate both groups with an exact multi-source BFS.
		fmt.Printf("exact check: base=%.4f sky=%.4f\n",
			neisky.GroupValue(g, base.Group, m), neisky.GroupValue(g, sky.Group, m))
	}

	// Single-vertex centralities for context: the best singleton vs the
	// greedy group of size k.
	close1 := neisky.VertexCloseness(g)
	best, bestV := 0.0, int32(0)
	for v, c := range close1 {
		if c > best {
			best, bestV = c, int32(v)
		}
	}
	fmt.Printf("\nbest single vertex: %d with closeness %.4f\n", bestV, best)
}
