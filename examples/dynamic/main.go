// Dynamic example: maintain a neighborhood skyline while a social
// network evolves (edges arriving and churning), and contrast the exact
// skyline with the ε-approximate skyline and the independent-set
// reduction — the three extensions built on the paper's core.
package main

import (
	"fmt"
	"time"

	"neisky"
	"neisky/internal/rng"
)

func main() {
	// Start from a snapshot, then stream updates.
	g, err := neisky.LoadDataset("youtube-sim", 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Println("snapshot:", g.Stats())

	m := neisky.NewSkylineMaintainer(g)
	fmt.Printf("initial skyline: %d of %d vertices\n", m.SkylineSize(), m.N())

	// Stream 2000 mixed updates.
	r := rng.New(2026)
	n := int32(m.N())
	adds, dels := 0, 0
	start := time.Now()
	for i := 0; i < 2000; i++ {
		u, v := int32(r.Intn(int(n))), int32(r.Intn(int(n)))
		if u == v {
			continue
		}
		if m.Has(u, v) && r.Float64() < 0.4 {
			if m.RemoveEdge(u, v) {
				dels++
			}
		} else if m.AddEdge(u, v) {
			adds++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("applied %d inserts + %d deletes in %s (%.1fµs/update)\n",
		adds, dels, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(adds+dels))
	fmt.Printf("maintained skyline: %d vertices\n", m.SkylineSize())

	// Cross-check against a from-scratch recomputation.
	snapshot := m.Graph()
	static := neisky.Skyline(snapshot)
	fmt.Printf("recomputed skyline: %d vertices (match: %v)\n",
		len(static), len(static) == m.SkylineSize())

	// The ε-approximate skyline (the paper's future-work remark):
	// loosening domination shrinks the skyline further.
	for _, eps := range []float64{0, 0.2, 0.4} {
		res := neisky.ApproxSkyline(snapshot, eps, neisky.Options{})
		fmt.Printf("ε=%.1f skyline: %d vertices\n", eps, len(res.Skyline))
	}

	// Independent-set reduction (the paper's intro application):
	// neighborhood inclusion kernelizes the instance.
	forced, kernel := neisky.ReduceForIndependentSet(snapshot)
	fmt.Printf("MIS reduction: %d vertices forced into the set, kernel %d of %d\n",
		len(forced), len(kernel), snapshot.N())
	greedy := neisky.IndependentSetGreedy(snapshot)
	fmt.Printf("greedy independent set: %d vertices (valid: %v)\n",
		len(greedy), neisky.IsIndependentSet(snapshot, greedy))
}
