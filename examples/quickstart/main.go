// Quickstart: build a small graph, compute its neighborhood skyline
// with every algorithm, and inspect domination relationships.
package main

import (
	"fmt"

	"neisky"
)

func main() {
	// The paper's running example (Fig 1 reconstruction): a 15-vertex
	// graph whose skyline is {0, 1, 4, 5, 6, 7, 8, 9}.
	g, err := neisky.LoadDataset("fig1", 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("graph:", g.Stats())

	// The one-liner: Algorithm 3 (FilterRefineSky) under defaults.
	skyline := neisky.Skyline(g)
	fmt.Println("skyline:", skyline)

	// Every algorithm computes the same set; they differ in cost.
	for _, algo := range []neisky.Algorithm{
		neisky.FilterRefine, neisky.Base, neisky.TwoHop, neisky.CandidateSet,
	} {
		res := neisky.ComputeSkyline(g, algo, neisky.Options{})
		fmt.Printf("%-16s |R|=%d |C|=%d pairs-examined=%d\n",
			algo, len(res.Skyline), len(res.Candidates), res.Stats.PairsExamined)
	}

	// Domination queries: vertex 8 dominates the pendant 13 because
	// N(13) = {8} ⊆ N[8].
	fmt.Println("8 dominates 13:", neisky.Dominates(g, 8, 13))
	fmt.Println("13 dominates 8:", neisky.Dominates(g, 13, 8))

	// The candidate set C of the filter phase always contains R.
	c := neisky.Candidates(g, neisky.Options{})
	fmt.Printf("candidates: %v (skyline is a subset: Lemma 1)\n", c)

	// The dominator array names one dominator per pruned vertex.
	res := neisky.SkylineResult(g, neisky.Options{})
	for v := int32(0); v < int32(g.N()); v++ {
		if d := res.Dominator[v]; d != v {
			fmt.Printf("  vertex %2d is dominated by %2d\n", v, d)
		}
	}
}
