// Maximum clique example: find the largest clique (a fully-connected
// community) and the top-k largest distinct cliques on a social-network
// stand-in, with and without neighborhood-skyline pruning.
package main

import (
	"fmt"
	"time"

	"neisky"
)

func main() {
	// A power-law graph with a planted 12-clique, so the answer is known.
	bg := neisky.GeneratePowerLaw(4000, 16000, 2.4, 99)
	b := neisky.NewBuilder(bg.N())
	bg.Edges(func(u, v int32) { b.AddEdge(u, v) })
	members := []int32{10, 120, 530, 1200, 1900, 2200, 2600, 2800, 3100, 3400, 3700, 3999}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			b.AddEdge(members[i], members[j])
		}
	}
	g := b.Build()
	fmt.Println("graph:", g.Stats(), "(planted 12-clique)")

	start := time.Now()
	base := neisky.MaxCliqueBase(g)
	baseT := time.Since(start)
	fmt.Printf("BaseMCC:  ω=%d clique=%v (%s, %d B&B nodes)\n",
		len(base.Clique), base.Clique, baseT.Round(time.Millisecond), base.Nodes)

	start = time.Now()
	sky := neisky.MaxClique(g)
	skyT := time.Since(start)
	fmt.Printf("NeiSkyMC: ω=%d clique=%v (%s, %d B&B nodes, %d seeds)\n",
		len(sky.Clique), sky.Clique, skyT.Round(time.Millisecond), sky.Nodes, sky.Seeds)

	if !neisky.IsClique(g, sky.Clique) {
		panic("result is not a clique")
	}
	if len(sky.Clique) != len(base.Clique) {
		panic("skyline pruning changed the answer")
	}

	// Top-k distinct cliques with the Lemma 6 candidate-release rule.
	k := 5
	start = time.Now()
	top := neisky.TopKCliques(g, k)
	fmt.Printf("\ntop-%d cliques (%s):\n", k, time.Since(start).Round(time.Millisecond))
	for i, c := range top {
		fmt.Printf("  #%d size=%d %v\n", i+1, len(c), c)
	}

	// A maximum clique through one specific vertex.
	mc := neisky.MaxCliqueContaining(g, members[0])
	fmt.Printf("\nmax clique containing %d: size=%d\n", members[0], len(mc))
}
