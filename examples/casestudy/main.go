// Case study (paper Fig 13): compute the neighborhood skylines of two
// tiny social networks — Zachary's karate club (embedded exactly) and a
// stand-in for the Madrid train bombing contact network — and show that
// low-degree vertices are the ones that get dominated.
package main

import (
	"fmt"
	"sort"

	"neisky"
)

func main() {
	for _, name := range []string{"karate", "bombing-sim"} {
		g, err := neisky.LoadDataset(name, 1)
		if err != nil {
			panic(err)
		}
		res := neisky.SkylineResult(g, neisky.Options{})
		pct := 100 * float64(len(res.Skyline)) / float64(g.N())
		fmt.Printf("== %s: %s ==\n", name, g.Stats())
		fmt.Printf("skyline: %d/%d vertices (%.0f%%)\n", len(res.Skyline), g.N(), pct)
		fmt.Printf("members: %v\n", res.Skyline)

		// Degree profile: dominated vertices skew low-degree, skyline
		// vertices high-degree — the power-law effect the paper's case
		// study highlights.
		inSky := neisky.SkylineSet(res, g.N())
		var skyDegs, domDegs []int
		for u := int32(0); u < int32(g.N()); u++ {
			if inSky[u] {
				skyDegs = append(skyDegs, g.Degree(u))
			} else {
				domDegs = append(domDegs, g.Degree(u))
			}
		}
		fmt.Printf("degree medians: skyline=%d dominated=%d\n", median(skyDegs), median(domDegs))

		// Which heavy hitters dominate the most vertices?
		counts := map[int32]int{}
		for v := int32(0); v < int32(g.N()); v++ {
			if d := res.Dominator[v]; d != v {
				counts[d]++
			}
		}
		type kv struct {
			v int32
			c int
		}
		var top []kv
		for v, c := range counts {
			top = append(top, kv{v, c})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].c != top[j].c {
				return top[i].c > top[j].c
			}
			return top[i].v < top[j].v
		})
		fmt.Print("top dominators: ")
		for i, t := range top {
			if i == 3 {
				break
			}
			fmt.Printf("v%d (dominates %d, degree %d)  ", t.v, t.c, g.Degree(t.v))
		}
		fmt.Print("\n\n")
	}
}

func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sort.Ints(xs)
	return xs[len(xs)/2]
}
