package neisky_test

import (
	"testing"

	"neisky"
)

func TestSkylineParallelFacade(t *testing.T) {
	g := neisky.GeneratePowerLaw(800, 2400, 2.2, 5)
	seq := neisky.Skyline(g)
	par := neisky.SkylineParallel(g, neisky.Options{}, 4)
	if len(seq) != len(par.Skyline) {
		t.Fatalf("parallel %d != sequential %d", len(par.Skyline), len(seq))
	}
}

func TestApproxSkylineFacade(t *testing.T) {
	g := neisky.GeneratePowerLaw(500, 1500, 2.2, 7)
	exact := neisky.ApproxSkyline(g, 0, neisky.Options{})
	loose := neisky.ApproxSkyline(g, 0.4, neisky.Options{})
	if len(loose.Skyline) >= len(exact.Skyline) {
		t.Fatalf("ε=0.4 skyline (%d) should shrink vs exact (%d)",
			len(loose.Skyline), len(exact.Skyline))
	}
	if !neisky.EpsDominates(g, exact.Dominator[findDominated(exact)], findDominated(exact), 0) {
		t.Fatal("recorded dominator must ε=0-dominate")
	}
}

func findDominated(res *neisky.Result) int32 {
	for v := int32(0); v < int32(len(res.Dominator)); v++ {
		if res.Dominator[v] != v {
			return v
		}
	}
	return 0
}

func TestMaintainerFacade(t *testing.T) {
	m := neisky.NewEmptySkylineMaintainer(5)
	m.AddEdge(0, 1)
	m.AddEdge(0, 2)
	m.AddEdge(0, 3)
	m.AddEdge(0, 4)
	// Star: center 0 is the whole skyline.
	if m.SkylineSize() != 1 || !m.InSkyline(0) {
		t.Fatalf("star skyline size %d", m.SkylineSize())
	}
	m.RemoveEdge(0, 4)
	if !m.InSkyline(0) {
		t.Fatal("center still undominated")
	}
	g := neisky.Karate()
	mk := neisky.NewSkylineMaintainer(g)
	if mk.SkylineSize() != len(neisky.Skyline(g)) {
		t.Fatal("maintainer disagrees with static skyline on karate")
	}
}

func TestBetweennessFacade(t *testing.T) {
	g := neisky.GeneratePowerLaw(200, 600, 2.3, 11)
	bc := neisky.VertexBetweenness(g)
	if len(bc) != g.N() {
		t.Fatal("betweenness length")
	}
	group, val := neisky.MaximizeGroupBetweenness(g, 3, 0, 1)
	if len(group) != 3 || val <= 0 {
		t.Fatalf("group %v value %v", group, val)
	}
	exact := neisky.GroupBetweenness(g, group, 0, 1)
	if exact <= 0 {
		t.Fatal("exact group betweenness must be positive")
	}
}

func TestDistanceIndexFacade(t *testing.T) {
	g := neisky.GeneratePowerLaw(300, 900, 2.3, 13)
	ix := neisky.BuildDistanceIndex(g)
	s := []int32{0, 5}
	a := neisky.GroupValue(g, s, neisky.GroupCloseness)
	b := neisky.GroupValueIndexed(g, ix, s, neisky.GroupCloseness)
	if a != b {
		t.Fatalf("indexed group value %v != BFS %v", b, a)
	}
	if ix.Query(0, 0) != 0 {
		t.Fatal("self distance must be 0")
	}
}

func TestMISFacade(t *testing.T) {
	g := neisky.GenerateER(40, 0.15, 3)
	set := neisky.MaxIndependentSet(g)
	if !neisky.IsIndependentSet(g, set) {
		t.Fatal("MIS facade returned dependent set")
	}
	greedy := neisky.IndependentSetGreedy(g)
	if !neisky.IsIndependentSet(g, greedy) || len(greedy) > len(set) {
		t.Fatalf("greedy %d must be valid and ≤ optimum %d", len(greedy), len(set))
	}
	forced, kernel := neisky.ReduceForIndependentSet(g)
	if len(forced)+len(kernel) > g.N() {
		t.Fatal("reduction accounting broken")
	}
}

func TestPartialOrderFacade(t *testing.T) {
	g := neisky.Karate()
	po := neisky.AllDominations(g, neisky.Options{})
	if po.Pairs == 0 {
		t.Fatal("karate has domination pairs")
	}
	layer, count := po.Layers()
	if count < 2 || len(layer) != g.N() {
		t.Fatalf("layers: count=%d", count)
	}
	sky := neisky.Skyline(g)
	if len(po.Skyline()) != len(sky) {
		t.Fatal("partial-order skyline size mismatch")
	}
}

func TestTwinsFacade(t *testing.T) {
	g := neisky.GeneratePowerLaw(300, 600, 2.1, 4)
	classes := neisky.TwinClasses(g)
	if len(classes) == 0 || len(classes) > g.N() {
		t.Fatal("classes out of range")
	}
	q, rep, classOf := neisky.CollapseTwins(g)
	if q.N() != len(classes) || len(rep) != q.N() || len(classOf) != g.N() {
		t.Fatal("quotient shapes wrong")
	}
}
