package neisky_test

import (
	"bytes"
	"testing"

	"neisky"
	"neisky/internal/core"
	"neisky/internal/dynsky"
	"neisky/internal/gen"
	"neisky/internal/graph"
)

// TestEndToEndPipeline exercises the whole system the way a downstream
// user would: generate a workload, persist and reload it, compute the
// skyline every way the library offers, run every application on it,
// then stream updates through the maintainer and re-verify.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate and persist.
	g0 := neisky.GeneratePowerLaw(600, 1800, 2.2, 99)
	var text, bin bytes.Buffer
	if err := g0.WriteEdgeList(&text); err != nil {
		t.Fatal(err)
	}
	if err := g0.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	gText, err := neisky.ReadEdgeList(&text)
	if err != nil {
		t.Fatal(err)
	}
	gBin, err := graph.ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if gText.M() != g0.M() || gBin.M() != g0.M() {
		t.Fatal("persistence round trip lost edges")
	}
	// Text round-trip compacts isolated vertices away; work with the
	// binary copy, which is exact.
	g := gBin

	// 2. Skyline, every way.
	want := neisky.Skyline(g)
	for _, algo := range []neisky.Algorithm{neisky.Base, neisky.TwoHop, neisky.CandidateSet} {
		got := neisky.ComputeSkyline(g, algo, neisky.Options{}).Skyline
		if len(got) != len(want) {
			t.Fatalf("%v disagrees: %d vs %d", algo, len(got), len(want))
		}
	}
	par := neisky.SkylineParallel(g, neisky.Options{}, 4)
	if len(par.Skyline) != len(want) {
		t.Fatal("parallel skyline disagrees")
	}

	// 3. Partial order and twins are consistent with the skyline.
	po := neisky.AllDominations(g, neisky.Options{})
	if len(po.Skyline()) != len(want) {
		t.Fatal("partial order skyline disagrees")
	}
	inSky := neisky.SkylineSet(neisky.SkylineResult(g, neisky.Options{}), g.N())
	for _, class := range neisky.TwinClasses(g) {
		for _, v := range class[1:] {
			if inSky[v] {
				t.Fatal("non-minimal twin in skyline")
			}
		}
	}

	// 4. Applications agree with their baselines.
	sky := neisky.MaxClique(g)
	base := neisky.MaxCliqueBase(g)
	if len(sky.Clique) != len(base.Clique) {
		t.Fatal("clique sizes disagree")
	}
	gc := neisky.MaximizeGroupCloseness(g, 5)
	if len(gc.Group) != 5 {
		t.Fatal("group closeness group wrong size")
	}
	isSet := neisky.IndependentSetGreedy(g)
	if !neisky.IsIndependentSet(g, isSet) {
		t.Fatal("independent set invalid")
	}

	// 5. Stream churn through the maintainer; verify against static
	// recomputation at the end.
	m := dynsky.New(g)
	for _, op := range gen.ChurnStream(g, 400, 123) {
		if op.Add {
			m.AddEdge(op.U, op.V)
		} else {
			m.RemoveEdge(op.U, op.V)
		}
	}
	recomputed := core.FilterRefineSky(m.Graph(), core.Options{})
	if !core.EqualSkylines(m.Skyline(), recomputed.Skyline) {
		t.Fatal("maintained skyline diverged from recomputation")
	}

	// 6. The ε-skyline at ε=0 matches; looser ε never grows it beyond n.
	if got := neisky.ApproxSkyline(g, 0, neisky.Options{}); len(got.Skyline) != len(want) {
		t.Fatal("ε=0 disagrees with exact skyline")
	}
}
