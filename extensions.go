package neisky

import (
	"neisky/internal/betweenness"
	"neisky/internal/centrality"
	"neisky/internal/core"
	"neisky/internal/dynsky"
	"neisky/internal/mis"
	"neisky/internal/pll"
	"neisky/internal/skytree"
	"neisky/internal/twins"
)

// This file exposes the extensions built on top of the paper's core:
// parallel skyline computation, the approximate skyline the paper's
// closing remark calls for, dynamic maintenance under edge updates,
// group betweenness maximization (the application §IV-D defers to
// future work), and the maximum-independent-set reduction from the
// paper's introduction.

// SkylineParallel computes the skyline with both the filter and refine
// phases sharded across the given number of worker goroutines. Results
// are identical to Skyline.
func SkylineParallel(g *Graph, opts Options, workers int) *Result {
	return core.ParallelFilterRefineSky(g, opts, workers)
}

// ShardOptions tune SkylineSharded: shard count, worker-pool size, the
// register-sketch ablation switch, and the per-shard paging-hint
// callback for mmap-backed snapshots.
type ShardOptions = core.ShardOptions

// SkylineSharded computes the skyline with the fused sharded engine:
// contiguous work-balanced vertex shards, a refine-first single pass
// per shard, and per-vertex cardinality sketches as a no-false-negative
// dominance pre-filter. Results are identical to Skyline.
func SkylineSharded(g *Graph, opts Options, so ShardOptions) *Result {
	return core.ShardedFilterRefineSky(g, opts, so)
}

// ApproxSkyline computes the ε-skyline: u may ε-dominate v while
// missing up to an ε fraction of v's neighbors. ε = 0 is the exact
// skyline. See internal/core/approx.go for the formalization.
func ApproxSkyline(g *Graph, eps float64, opts Options) *Result {
	return core.ApproxSkyline(g, eps, opts)
}

// EpsDominates reports the ε-domination order used by ApproxSkyline.
func EpsDominates(g *Graph, u, v int32, eps float64) bool {
	return core.EpsDominates(g, u, v, eps)
}

// SkylineMaintainer maintains a skyline under edge insertions and
// deletions with 2-hop-local updates.
type SkylineMaintainer = dynsky.Maintainer

// NewSkylineMaintainer seeds a maintainer from a static graph.
func NewSkylineMaintainer(g *Graph) *SkylineMaintainer { return dynsky.New(g) }

// SkylineTree is the layered dominance index: every vertex's peel layer
// (layer 0 = the neighborhood skyline) plus its canonical dominator
// witness one layer up.
type SkylineTree = skytree.Tree

// SkylineTreeOptions tune index construction.
type SkylineTreeOptions = skytree.BuildOptions

// BuildSkylineTree constructs the layered dominance index of g by
// repeated sharded filter/refine peels.
func BuildSkylineTree(g *Graph, opts SkylineTreeOptions) *SkylineTree {
	return skytree.Build(g, opts)
}

// SkylineTreeMaintainer keeps a layered dominance index exact under
// edge insertions and deletions, re-peeling only the local region each
// update can affect.
type SkylineTreeMaintainer = skytree.Maintainer

// NewSkylineTreeMaintainer builds a maintainer for g (initial index
// built from scratch).
func NewSkylineTreeMaintainer(g *Graph, opts SkylineTreeOptions) *SkylineTreeMaintainer {
	return skytree.NewMaintainer(g, opts)
}

// SubsetSkyline computes the neighborhood skyline of the subgraph
// induced by sub, using t (may be nil) to steer the probe order.
func SubsetSkyline(g *Graph, t *SkylineTree, sub []int32) []int32 {
	return skytree.SubsetSkyline(g, t, sub).Skyline
}

// NewEmptySkylineMaintainer starts from an edgeless graph on n
// vertices.
func NewEmptySkylineMaintainer(n int) *SkylineMaintainer { return dynsky.NewEmpty(n) }

// VertexBetweenness computes exact betweenness centrality (Brandes).
func VertexBetweenness(g *Graph) []float64 { return betweenness.Vertex(g) }

// GroupBetweenness evaluates the group betweenness of s; sources == 0
// computes exactly, otherwise a sampled estimate.
func GroupBetweenness(g *Graph, s []int32, sources int, seed uint64) float64 {
	return betweenness.Group(g, s, betweenness.Options{Sources: sources, Seed: seed})
}

// MaximizeGroupBetweenness greedily selects a k-vertex group with large
// group betweenness, restricting candidates to the neighborhood skyline
// (the pruning the paper conjectures for betweenness; heuristic).
func MaximizeGroupBetweenness(g *Graph, k, sources int, seed uint64) ([]int32, float64) {
	res := betweenness.NeiSkyGB(g, k, sources, seed)
	return res.Group, res.Value
}

// MaxIndependentSet computes a maximum independent set exactly by
// branch-and-bound with the neighborhood-inclusion reduction (moderate
// graph sizes).
func MaxIndependentSet(g *Graph) []int32 { return mis.Max(g).Set }

// IndependentSetGreedy computes an independent set with the min-degree
// heuristic plus reductions.
func IndependentSetGreedy(g *Graph) []int32 { return mis.Greedy(g).Set }

// ReduceForIndependentSet kernelizes g with the degree and
// neighborhood-inclusion rules; |MIS(g)| = len(forced) + |MIS(kernel)|.
func ReduceForIndependentSet(g *Graph) (forced, kernel []int32) {
	forced, kernel, _ = mis.Reduce(g)
	return forced, kernel
}

// IsIndependentSet verifies pairwise non-adjacency.
func IsIndependentSet(g *Graph, set []int32) bool { return mis.IsIndependent(g, set) }

// PartialOrder holds every domination pair of a graph (the full
// positional-dominance computation of the paper's reference [7], which
// the skyline problem deliberately avoids).
type PartialOrder = core.PartialOrder

// AllDominations enumerates the complete domination order. Use
// PartialOrder.Layers for the domination-depth hierarchy.
func AllDominations(g *Graph, opts Options) *PartialOrder {
	return core.AllDominations(g, opts)
}

// TwinClasses partitions vertices into neighborhood-equivalence (twin)
// classes: within a class every vertex but the minimum ID is dominated.
func TwinClasses(g *Graph) [][]int32 { return twins.Classes(g) }

// CollapseTwins returns the twin-quotient graph, the original ID of
// each quotient vertex, and each original vertex's class index.
func CollapseTwins(g *Graph) (q *Graph, rep []int32, classOf []int32) {
	return twins.Quotient(g)
}

// DistanceIndex is a pruned-landmark-labeling index answering exact
// shortest-path distance queries (−1 for disconnected pairs).
type DistanceIndex = pll.Index

// BuildDistanceIndex constructs a PLL index over g (hub-first landmark
// order; exact queries in O(label) time).
func BuildDistanceIndex(g *Graph) *DistanceIndex { return pll.Build(g) }

// GroupValueIndexed evaluates a group centrality through a prebuilt
// distance index instead of BFS — handy when scoring many candidate
// groups against one graph.
func GroupValueIndexed(g *Graph, ix *DistanceIndex, s []int32, m Measure) float64 {
	return centrality.GroupValueWithOracle(g, ix, s, m)
}
