#!/bin/sh
# Serving benchmark pipeline (BENCH_4 rows): generate a snapshot, start
# the nsserve daemon on an ephemeral port, replay SERVE_N mixed queries
# with SERVE_SWAPS concurrent snapshot swaps through nsload, and write
# the latency rows to BENCH4. The run fails if any query fails or tears.
#
# Knobs (environment): SERVE_N (queries, default 100000), SERVE_SWAPS
# (concurrent swaps, default 5), SERVE_WORKERS (default GOMAXPROCS),
# BENCH4 (output JSON, default bench-serve.json).
set -eu
cd "$(dirname "$0")/.."

SERVE_N="${SERVE_N:-100000}"
SERVE_SWAPS="${SERVE_SWAPS:-5}"
SERVE_WORKERS="${SERVE_WORKERS:-0}"
BENCH4="${BENCH4:-bench-serve.json}"

workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
	if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
		kill "$serve_pid" 2>/dev/null || true
		wait "$serve_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build =="
go build -o "$workdir/nsgen" ./cmd/nsgen
go build -o "$workdir/nsserve" ./cmd/nsserve
go build -o "$workdir/nsload" ./cmd/nsload

echo "== generate snapshot (chunglu n=2000 m=8000) =="
"$workdir/nsgen" -model chunglu -n 2000 -m 8000 -relabel -o "$workdir/serve.nsb2"

echo "== start nsserve =="
"$workdir/nsserve" -input "$workdir/serve.nsb2" -mmap \
	-addr 127.0.0.1:0 -addr-file "$workdir/addr" &
serve_pid=$!

i=0
while [ ! -s "$workdir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: nsserve did not come up" >&2
		exit 1
	fi
	kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: nsserve exited early" >&2; exit 1; }
	sleep 0.1
done
addr="$(cat "$workdir/addr")"
echo "daemon at $addr"

echo "== nsload: $SERVE_N mixed queries, $SERVE_SWAPS concurrent swaps =="
"$workdir/nsload" -addr "http://$addr" -n "$SERVE_N" -workers "$SERVE_WORKERS" \
	-swaps "$SERVE_SWAPS" -k 2 -seed 1 -json "$BENCH4"

echo "== clean shutdown (SIGINT) =="
kill -INT "$serve_pid"
wait "$serve_pid"
serve_pid=""

echo "wrote $BENCH4"
