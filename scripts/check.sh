#!/bin/sh
# Repo gate: gofmt, vet, build, full tests, race-test the hot packages,
# then smoke the Fig 3 benchmarks (including the large hub-bitmap
# variants) once. CI runs this via `make ci`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
	echo "FAIL: the following files are not gofmt-clean:" >&2
	echo "$fmt_out" >&2
	echo "run: gofmt -w ." >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (full) =="
go test ./...

echo "== go test -race (hot packages + cancellation/fault-injection + epoch swaps) =="
go test -race ./internal/core/... ./internal/graph/... ./internal/bitset/... \
	./internal/bfs/... ./internal/centrality/... ./internal/dynsky/... \
	./internal/clique/... ./internal/runctl/... ./internal/serve/... \
	./internal/sketch/... ./internal/skytree/...
go test -race -run 'Cancel|Ctx|Apply' ./internal/mis/ ./internal/betweenness/

echo "== bench smoke (Fig3, 1 iteration) =="
go test -run '^$' -bench 'Fig3' -benchtime 1x .

echo "== bench smoke (MS-BFS vs scalar sweep, 1 iteration) =="
go test -run '^$' -bench 'MSBFS' -benchtime 1x ./internal/bfs/

echo "== scale pipeline smoke (stream-convert -> mmap -> skyline) =="
scaledir="$(mktemp -d)"
serve_pid=""
cleanup() {
	if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
		kill "$serve_pid" 2>/dev/null || true
		wait "$serve_pid" 2>/dev/null || true
	fi
	rm -rf "$scaledir"
}
trap cleanup EXIT
go run ./cmd/nsgen -model chunglu -n 5000 -m 20000 -shuffle -relabel -o "$scaledir/smoke.nsb2"
go run ./cmd/nsky -input "$scaledir/smoke.nsb2" -mmap

echo "== serving smoke (nsserve daemon + mixed nsload traffic + mid-stream swaps + SIGINT) =="
go build -o "$scaledir/nsserve" ./cmd/nsserve
go build -o "$scaledir/nsload" ./cmd/nsload
"$scaledir/nsserve" -input "$scaledir/smoke.nsb2" -mmap \
	-addr 127.0.0.1:0 -addr-file "$scaledir/addr" &
serve_pid=$!
i=0
while [ ! -s "$scaledir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: nsserve did not come up" >&2
		exit 1
	fi
	kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: nsserve exited early" >&2; exit 1; }
	sleep 0.1
done
"$scaledir/nsload" -addr "http://$(cat "$scaledir/addr")" -n 400 -workers 8 -swaps 2 -seed 1
kill -INT "$serve_pid"
wait "$serve_pid" || { echo "FAIL: nsserve did not shut down cleanly on SIGINT" >&2; exit 1; }
serve_pid=""

echo "OK"
