#!/bin/sh
# Repo gate: vet, build, race-test the hot packages, then smoke the
# Fig 3 benchmarks (including the large hub-bitmap variants) once.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (full) =="
go test ./...

echo "== go test -race (hot packages) =="
go test -race ./internal/core/... ./internal/graph/... ./internal/bitset/... \
	./internal/bfs/... ./internal/centrality/...

echo "== bench smoke (Fig3, 1 iteration) =="
go test -run '^$' -bench 'Fig3' -benchtime 1x .

echo "== bench smoke (MS-BFS vs scalar sweep, 1 iteration) =="
go test -run '^$' -bench 'MSBFS' -benchtime 1x ./internal/bfs/

echo "OK"
