#!/bin/sh
# Repo gate: gofmt, vet, build, full tests, race-test the hot packages,
# then smoke the Fig 3 benchmarks (including the large hub-bitmap
# variants) once. CI runs this via `make ci`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
	echo "FAIL: the following files are not gofmt-clean:" >&2
	echo "$fmt_out" >&2
	echo "run: gofmt -w ." >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (full) =="
go test ./...

echo "== go test -race (hot packages + cancellation/fault-injection) =="
go test -race ./internal/core/... ./internal/graph/... ./internal/bitset/... \
	./internal/bfs/... ./internal/centrality/... ./internal/dynsky/... \
	./internal/clique/... ./internal/runctl/...
go test -race -run 'Cancel|Ctx|Apply' ./internal/mis/ ./internal/betweenness/

echo "== bench smoke (Fig3, 1 iteration) =="
go test -run '^$' -bench 'Fig3' -benchtime 1x .

echo "== bench smoke (MS-BFS vs scalar sweep, 1 iteration) =="
go test -run '^$' -bench 'MSBFS' -benchtime 1x ./internal/bfs/

echo "== scale pipeline smoke (stream-convert -> mmap -> skyline) =="
scaledir="$(mktemp -d)"
trap 'rm -rf "$scaledir"' EXIT
go run ./cmd/nsgen -model chunglu -n 5000 -m 20000 -shuffle -relabel -o "$scaledir/smoke.nsb2"
go run ./cmd/nsky -input "$scaledir/smoke.nsb2" -mmap

echo "OK"
