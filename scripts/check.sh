#!/bin/sh
# Repo gate: gofmt, vet, build, full tests, race-test the hot packages,
# then smoke the Fig 3 benchmarks (including the large hub-bitmap
# variants) once. CI runs this via `make ci`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
	echo "FAIL: the following files are not gofmt-clean:" >&2
	echo "$fmt_out" >&2
	echo "run: gofmt -w ." >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (full) =="
go test ./...

echo "== go test -race (hot packages + cancellation/fault-injection + epoch swaps) =="
go test -race ./internal/core/... ./internal/graph/... ./internal/bitset/... \
	./internal/bfs/... ./internal/centrality/... ./internal/dynsky/... \
	./internal/clique/... ./internal/runctl/... ./internal/serve/... \
	./internal/sketch/... ./internal/skytree/... ./internal/wal/...
go test -race -run 'Cancel|Ctx|Apply' ./internal/mis/ ./internal/betweenness/

echo "== bench smoke (Fig3, 1 iteration) =="
go test -run '^$' -bench 'Fig3' -benchtime 1x .

echo "== bench smoke (MS-BFS vs scalar sweep, 1 iteration) =="
go test -run '^$' -bench 'MSBFS' -benchtime 1x ./internal/bfs/

echo "== scale pipeline smoke (stream-convert -> mmap -> skyline) =="
scaledir="$(mktemp -d)"
serve_pid=""
cleanup() {
	if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
		kill "$serve_pid" 2>/dev/null || true
		wait "$serve_pid" 2>/dev/null || true
	fi
	rm -rf "$scaledir"
}
trap cleanup EXIT
go run ./cmd/nsgen -model chunglu -n 5000 -m 20000 -shuffle -relabel -o "$scaledir/smoke.nsb2"
go run ./cmd/nsky -input "$scaledir/smoke.nsb2" -mmap

echo "== serving smoke (nsserve daemon + mixed nsload traffic + mid-stream swaps + SIGINT) =="
go build -o "$scaledir/nsserve" ./cmd/nsserve
go build -o "$scaledir/nsload" ./cmd/nsload
"$scaledir/nsserve" -input "$scaledir/smoke.nsb2" -mmap \
	-addr 127.0.0.1:0 -addr-file "$scaledir/addr" &
serve_pid=$!
i=0
while [ ! -s "$scaledir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: nsserve did not come up" >&2
		exit 1
	fi
	kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: nsserve exited early" >&2; exit 1; }
	sleep 0.1
done
"$scaledir/nsload" -addr "http://$(cat "$scaledir/addr")" -n 400 -workers 8 -swaps 2 -seed 1
kill -INT "$serve_pid"
wait "$serve_pid" || { echo "FAIL: nsserve did not shut down cleanly on SIGINT" >&2; exit 1; }
serve_pid=""

echo "== crash-recovery smoke (nsserve -wal, kill -9 mid-stream, restart, recovered state) =="
waldir="$scaledir/wal"
rm -f "$scaledir/addr"
"$scaledir/nsserve" -input "$scaledir/smoke.nsb2" -mmap -wal "$waldir" \
	-addr 127.0.0.1:0 -addr-file "$scaledir/addr" >"$scaledir/wal-boot.log" &
serve_pid=$!
i=0
while [ ! -s "$scaledir/addr" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "FAIL: durable nsserve did not come up" >&2; exit 1; }
	kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: durable nsserve exited early" >&2; exit 1; }
	sleep 0.1
done
base="http://$(cat "$scaledir/addr")"
# Ten acknowledged swaps: with -wal-sync always (the default), every
# 200 below is a durability promise the recovery must keep.
i=0
while [ "$i" -lt 10 ]; do
	i=$((i + 1))
	curl -sf -X POST "$base/v1/snapshot/swap" \
		-d "{\"ops\":[{\"add\":true,\"u\":$i,\"v\":$((i + 1000))}]}" >/dev/null \
		|| { echo "FAIL: acked swap $i failed" >&2; exit 1; }
done
# Keep a swap stream in flight and kill -9 mid-stream: the tail may
# tear, but never the ten acknowledged batches above.
( j=0; while [ "$j" -lt 1000 ]; do j=$((j + 1)); \
	curl -s -X POST "$base/v1/snapshot/swap" \
		-d "{\"ops\":[{\"add\":true,\"u\":$j,\"v\":$((j + 2000))}]}" >/dev/null 2>&1 || exit 0; \
  done ) &
stream_pid=$!
sleep 0.4
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
wait "$stream_pid" 2>/dev/null || true

# recover_stats boots from the WAL alone and writes the recovered
# fingerprint (edge count, last sequence, skyline size) to $1.
recover_stats() {
	rm -f "$scaledir/addr"
	"$scaledir/nsserve" -wal "$waldir" -addr 127.0.0.1:0 -addr-file "$scaledir/addr" \
		>"$scaledir/wal-recover.log" &
	serve_pid=$!
	i=0
	while [ ! -s "$scaledir/addr" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "FAIL: recovery boot did not come up" >&2; exit 1; }
		kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: recovery boot exited early (see $scaledir/wal-recover.log)" >&2; cat "$scaledir/wal-recover.log" >&2; exit 1; }
		sleep 0.1
	done
	grep -q "nsserve: recovered" "$scaledir/wal-recover.log" \
		|| { echo "FAIL: restart did not report a recovery" >&2; exit 1; }
	{
		curl -sf "http://$(cat "$scaledir/addr")/v1/stats" \
			| tr -d ' \n' | grep -o '"m":[0-9]*\|"wal_last_seq":[0-9]*' | sort | tr '\n' ';'
		curl -sf "http://$(cat "$scaledir/addr")/v1/skyline?limit=1" \
			| tr -d ' \n' | grep -o '"skyline_size":[0-9]*'
	} >"$1"
}

recover_stats "$scaledir/recover1"
seq1="$(grep -o 'wal_last_seq":[0-9]*' "$scaledir/recover1" | grep -o '[0-9]*')"
[ "$seq1" -ge 10 ] || { echo "FAIL: recovered through seq $seq1, want >= 10 acked swaps" >&2; exit 1; }
# Crash the recovered daemon too (no new writes): a second recovery
# must land on the identical state — op count and skyline alike.
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
recover_stats "$scaledir/recover2"
cmp -s "$scaledir/recover1" "$scaledir/recover2" \
	|| { echo "FAIL: repeated recovery diverged: '$(cat "$scaledir/recover1")' vs '$(cat "$scaledir/recover2")'" >&2; exit 1; }
echo "crash recovery: acked prefix ($seq1 batches) and skyline stable across restarts"
kill -INT "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "OK"
