//go:build ignore

// Command bench_compare diffs a fresh gatebench run against the
// committed baseline and exits non-zero on a regression.
//
// Usage:
//
//	go run ./cmd/nsbench -gatebench -json current.json
//	go run scripts/bench_compare.go scripts/bench_baseline.json current.json
//	go run scripts/bench_compare.go -tolerance 0.30 baseline.json current.json
//
// Both files are JSON arrays of bench rows. Rows are ratio-normalized
// against each run's own GateReference row before comparison, so the
// gate is insensitive to absolute machine speed (see
// internal/bench/compare.go). To refresh the baseline after an
// intentional perf change, re-run -gatebench on a quiet machine and
// commit the new scripts/bench_baseline.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"neisky/internal/bench"
)

func main() {
	tolerance := flag.Float64("tolerance", bench.DefaultGateTolerance,
		"relative ratio growth that fails the gate (0.25 = +25%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: go run scripts/bench_compare.go [-tolerance 0.25] baseline.json current.json")
		os.Exit(2)
	}
	baseline, err := bench.LoadRows(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	current, err := bench.LoadRows(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	results, err := bench.CompareGate(baseline, current, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	fmt.Printf("%-30s %10s %10s %8s\n", "ALGO (ratio vs reference)", "BASELINE", "CURRENT", "GROWTH")
	failed := 0
	for _, r := range results {
		mark := "  ok"
		if r.Failed {
			mark = "  FAIL"
			failed++
		}
		fmt.Printf("%-30s %10.3f %10.3f %+7.1f%%%s\n",
			r.Algo, r.Baseline, r.Current, r.Growth*100, mark)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: %d row(s) regressed more than %.0f%%\n",
			failed, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("bench_compare: all %d rows within %.0f%% of baseline\n",
		len(results), *tolerance*100)
}
