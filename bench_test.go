// Benchmarks mirroring the paper's evaluation section. Each table and
// figure has a corresponding Benchmark* here driving the same code paths
// as cmd/nsbench, at sizes suitable for `go test -bench=.`; the full
// paper-scale sweeps live behind `go run ./cmd/nsbench -exp all`.
package neisky_test

import (
	"testing"

	"neisky"
	"neisky/internal/centrality"
	"neisky/internal/clique"
	"neisky/internal/core"
	"neisky/internal/dataset"
	"neisky/internal/gen"
	"neisky/internal/scjoin"
)

// benchGraph loads a dataset at reduced scale, failing the benchmark on
// error.
func benchGraph(b *testing.B, name string, scale float64) *neisky.Graph {
	b.Helper()
	g, err := neisky.LoadDataset(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable1Stats covers Table I: building the stand-ins and
// computing their statistics.
func BenchmarkTable1Stats(b *testing.B) {
	for _, name := range dataset.Five() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := benchGraph(b, name, 0.3)
				_ = g.Stats()
			}
		})
	}
}

// BenchmarkFig3Runtime covers Fig 3 (Exp-1): the five skyline algorithms
// on a representative dataset.
func BenchmarkFig3Runtime(b *testing.B) {
	g := benchGraph(b, "youtube-sim", 1)
	algos := []struct {
		name string
		run  func()
	}{
		{"LC-Join", func() { scjoin.Skyline(g, core.Options{}) }},
		{"TT-Join", func() { scjoin.TrieSkyline(g, core.Options{}) }},
		{"BaseSky", func() { core.BaseSky(g, core.Options{}) }},
		{"Base2Hop", func() { core.Base2Hop(g, core.Options{}) }},
		{"BaseCSet", func() { core.BaseCSet(g, core.Options{}) }},
		{"FilterRefineSky", func() { core.FilterRefineSky(g, core.Options{}) }},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.run()
			}
		})
	}
}

// BenchmarkFig3RuntimeLarge tracks the hub-bitmap hot path on the two
// large stand-ins the acceptance speedup is measured on: the bitset
// kernels vs the legacy merge path (DisableHubIndex) vs the sharded
// filter+refine at 8 workers.
func BenchmarkFig3RuntimeLarge(b *testing.B) {
	for _, name := range []string{"livejournal-sim", "orkut-sim"} {
		g := benchGraph(b, name, 1)
		core.FilterRefineSky(g, core.Options{}) // build the hub index outside the timer
		variants := []struct {
			name string
			run  func()
		}{
			{"FilterRefineSky", func() { core.FilterRefineSky(g, core.Options{}) }},
			{"FilterRefineSky-nohub", func() { core.FilterRefineSky(g, core.Options{DisableHubIndex: true}) }},
			{"Parallel-8", func() { core.ParallelFilterRefineSky(g, core.Options{}, 8) }},
		}
		for _, v := range variants {
			b.Run(name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					v.run()
				}
			})
		}
	}
}

// BenchmarkFig4Memory covers Fig 4 (Exp-2): run with -benchmem and read
// the B/op column — Base2Hop and LC-Join allocate far more than the
// filter-refine framework.
func BenchmarkFig4Memory(b *testing.B) {
	g := benchGraph(b, "notredame-sim", 1)
	b.Run("LC-Join", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scjoin.Skyline(g, core.Options{})
		}
	})
	b.Run("Base2Hop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Base2Hop(g, core.Options{})
		}
	})
	b.Run("FilterRefineSky", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	})
}

// BenchmarkFig5SkylineSizes covers Fig 5 (Exp-3): skyline extraction on
// each Table I stand-in.
func BenchmarkFig5SkylineSizes(b *testing.B) {
	for _, name := range dataset.Five() {
		g := benchGraph(b, name, 0.5)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.FilterRefineSky(g, core.Options{})
				if len(res.Skyline) == 0 {
					b.Fatal("empty skyline")
				}
			}
		})
	}
}

// BenchmarkFig6Synthetic covers Fig 6 (Exp-3): ER and power-law
// generation plus skyline computation.
func BenchmarkFig6Synthetic(b *testing.B) {
	b.Run("ER", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := gen.ERDeltaP(20000, 0.6, 1)
			core.FilterRefineSky(g, core.Options{})
		}
	})
	b.Run("PowerLaw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := gen.PowerLaw(20000, 30000, 3.0, 1)
			core.FilterRefineSky(g, core.Options{})
		}
	})
}

// BenchmarkFig7GroupCloseness covers Fig 7 (Exp-4): Greedy++-style vs
// NeiSkyGC, k=10.
func BenchmarkFig7GroupCloseness(b *testing.B) {
	g := benchGraph(b, "notredame-sim", 1)
	sky := core.FilterRefineSky(g, core.Options{})
	b.Run("GreedyPP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.GreedyPP(g, 10)
		}
	})
	b.Run("NeiSkyGC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.NeiSkyGCWithSkyline(g, 10, sky.Skyline)
		}
	})
}

// BenchmarkFig8GroupHarmonic covers Fig 8 (Exp-5).
func BenchmarkFig8GroupHarmonic(b *testing.B) {
	g := benchGraph(b, "notredame-sim", 1)
	sky := core.FilterRefineSky(g, core.Options{})
	b.Run("GreedyH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.GreedyH(g, 10)
		}
	})
	b.Run("NeiSkyGH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.NeiSkyGHWithSkyline(g, 10, sky.Skyline)
		}
	})
}

// BenchmarkFig9TopkClique covers Fig 9 (Exp-6): top-k maximum cliques,
// k=3.
func BenchmarkFig9TopkClique(b *testing.B) {
	g := benchGraph(b, "pokec-sim", 0.5)
	b.Run("BaseTopkMCC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clique.BaseTopkMCC(g, 3)
		}
	})
	b.Run("NeiSkyTopkMCC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clique.NeiSkyTopkMCC(g, 3)
		}
	})
}

// BenchmarkFig10Scalability covers Fig 10 (Exp-7): skyline computation
// at growing graph sizes.
func BenchmarkFig10Scalability(b *testing.B) {
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		g := benchGraph(b, "livejournal-sim", frac)
		b.Run("BaseSky/"+fracName(frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.BaseSky(g, core.Options{})
			}
		})
		b.Run("FilterRefineSky/"+fracName(frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.FilterRefineSky(g, core.Options{})
			}
		})
	}
}

func fracName(f float64) string {
	switch {
	case f <= 0.25:
		return "25pct"
	case f <= 0.5:
		return "50pct"
	default:
		return "100pct"
	}
}

// BenchmarkFig11GroupClosenessScale covers Fig 11 (Exp-7) at one size.
func BenchmarkFig11GroupClosenessScale(b *testing.B) {
	g := benchGraph(b, "livejournal-sim", 0.2)
	sky := core.FilterRefineSky(g, core.Options{})
	b.Run("GreedyPP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.GreedyPP(g, 5)
		}
	})
	b.Run("NeiSkyGC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.NeiSkyGCWithSkyline(g, 5, sky.Skyline)
		}
	})
}

// BenchmarkFig12GroupHarmonicScale covers Fig 12 (Exp-7) at one size.
func BenchmarkFig12GroupHarmonicScale(b *testing.B) {
	g := benchGraph(b, "livejournal-sim", 0.2)
	sky := core.FilterRefineSky(g, core.Options{})
	b.Run("GreedyH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.GreedyH(g, 5)
		}
	})
	b.Run("NeiSkyGH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.NeiSkyGHWithSkyline(g, 5, sky.Skyline)
		}
	})
}

// BenchmarkTable2Clique covers Table II (Exp-7): MC-BRB-style vs
// NeiSkyMC (search only; skyline precomputed as at paper scale).
func BenchmarkTable2Clique(b *testing.B) {
	g := benchGraph(b, "livejournal-sim", 0.5)
	sky := core.FilterRefineSky(g, core.Options{})
	b.Run("MC-BRB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clique.BaseMCC(g)
		}
	})
	b.Run("NeiSkyMC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clique.NeiSkyMCWithSkyline(g, sky.Skyline)
		}
	})
}

// BenchmarkFig13CaseStudy covers Fig 13: the tiny case-study graphs.
func BenchmarkFig13CaseStudy(b *testing.B) {
	for _, name := range []string{"karate", "bombing-sim"} {
		g := benchGraph(b, name, 1)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.FilterRefineSky(g, core.Options{})
			}
		})
	}
}

// --- Ablations for the design choices DESIGN.md calls out ---

// BenchmarkAblationFilterVariants: exact edge-constrained filter vs the
// literal (pendant-only) reading of Algorithm 2.
func BenchmarkAblationFilterVariants(b *testing.B) {
	g := benchGraph(b, "wikitalk-sim", 1)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	})
	b.Run("pendant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{PendantFilter: true})
		}
	})
}

// BenchmarkAblationBloom: Bloom filters on vs off in the refine phase.
func BenchmarkAblationBloom(b *testing.B) {
	g := benchGraph(b, "wikitalk-sim", 1)
	b.Run("bloom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	})
	b.Run("noBloom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{DisableBloom: true})
		}
	})
}

// BenchmarkAblationTwoHopScan: min-degree pivot vs the paper-literal
// full enumeration of 2-hop dominator candidates.
func BenchmarkAblationTwoHopScan(b *testing.B) {
	g := benchGraph(b, "dblp-sim", 1)
	b.Run("pivot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	})
	b.Run("fullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{FullTwoHopScan: true})
		}
	})
}

// BenchmarkAblationLazyGreedy: plain vs lazy greedy (both pruned-BFS).
func BenchmarkAblationLazyGreedy(b *testing.B) {
	g := benchGraph(b, "notredame-sim", 0.4)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.Greedy(g, 5, centrality.CLOSENESS, centrality.Options{PrunedBFS: true})
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.Greedy(g, 5, centrality.CLOSENESS, centrality.Options{Lazy: true, PrunedBFS: true})
		}
	})
}

// BenchmarkAblationPrunedBFS: full-BFS vs pruned-BFS gain evaluation
// (both lazy).
func BenchmarkAblationPrunedBFS(b *testing.B) {
	g := benchGraph(b, "notredame-sim", 0.4)
	b.Run("fullBFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.Greedy(g, 5, centrality.CLOSENESS, centrality.Options{Lazy: true})
		}
	})
	b.Run("prunedBFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.Greedy(g, 5, centrality.CLOSENESS, centrality.Options{Lazy: true, PrunedBFS: true})
		}
	})
}

// BenchmarkAblationNeiSkyMCVariants: hybrid degeneracy-skip NeiSkyMC vs
// the literal Algorithm 5 ego-network search.
func BenchmarkAblationNeiSkyMCVariants(b *testing.B) {
	g := benchGraph(b, "pokec-sim", 0.5)
	sky := core.FilterRefineSky(g, core.Options{})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clique.NeiSkyMCWithSkyline(g, sky.Skyline)
		}
	})
	b.Run("ego", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clique.NeiSkyMCEgo(g, sky.Skyline)
		}
	})
}

// BenchmarkExample2GainCalls pins the Example 2 accounting as a
// benchmark over the Fig 1 graph.
func BenchmarkExample2GainCalls(b *testing.B) {
	g := dataset.Fig1()
	sky := core.FilterRefineSky(g, core.Options{})
	b.Run("BaseGC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.Greedy(g, 3, centrality.CLOSENESS, centrality.Options{})
		}
	})
	b.Run("NeiSkyGC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			centrality.Greedy(g, 3, centrality.CLOSENESS,
				centrality.Options{Candidates: sky.Skyline})
		}
	})
}
