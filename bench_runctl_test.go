// Cancellation overhead gate: the Fig 3 hot path re-run through the
// three runctl states a caller can be in. "nocontext" is the plain
// entry point (nil run everywhere — Tick is a pointer compare);
// "background" is the Ctx entry point with context.Background(), which
// FromContext collapses to the same nil run; "cancellable" carries a
// live cancel-capable context, paying the real checkpoint polls. The
// acceptance bar is nocontext ≈ background (identical machine code
// path) and cancellable within a few percent — the polls are one
// atomic add per checkpoint interval. `make bench-runctl` runs this
// file.
package neisky_test

import (
	"context"
	"testing"

	"neisky/internal/core"
)

// BenchmarkRunctlOverheadFig3 measures FilterRefineSky on the Fig 3
// representative dataset across the three cancellation states.
func BenchmarkRunctlOverheadFig3(b *testing.B) {
	g := benchGraph(b, "youtube-sim", 1)
	core.FilterRefineSky(g, core.Options{}) // warm the hub index

	b.Run("nocontext", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FilterRefineSky(g, core.Options{})
		}
	})
	b.Run("background", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.FilterRefineSkyCtx(context.Background(), g, core.Options{})
			if res.Truncated {
				b.Fatal("spurious truncation")
			}
		}
	})
	b.Run("cancellable", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < b.N; i++ {
			res := core.FilterRefineSkyCtx(ctx, g, core.Options{})
			if res.Truncated {
				b.Fatal("spurious truncation")
			}
		}
	})
}
