GO ?= go

.PHONY: check test race bench bench-json build vet

check: ## vet + build + full tests + race on hot packages + bench smoke
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/graph/... ./internal/bitset/...

bench:
	$(GO) test -run '^$$' -bench 'Fig3' -benchtime 1x .

bench-json: ## regenerate BENCH_1.json-style rows into bench.json
	$(GO) run ./cmd/nsbench -json bench.json
