GO ?= go

.PHONY: check test race bench bench-msbfs bench-json build vet

check: ## vet + build + full tests + race on hot packages + bench smoke
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/graph/... ./internal/bitset/... \
		./internal/bfs/... ./internal/centrality/...

bench:
	$(GO) test -run '^$$' -bench 'Fig3' -benchtime 1x .

bench-msbfs: ## smoke the bit-parallel MS-BFS engine vs the scalar sweeps
	$(GO) test -run '^$$' -bench 'MSBFS' -benchtime 1x ./internal/bfs/
	$(GO) test -run '^$$' -bench 'FirstRoundSweep' -benchtime 1x ./internal/centrality/

bench-json: ## regenerate BENCH_1/BENCH_2-style rows into bench.json
	$(GO) run ./cmd/nsbench -json bench.json
