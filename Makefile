GO ?= go

.PHONY: check ci test race bench bench-msbfs bench-obs bench-runctl bench-json bench-scale bench-serve bench-shard bench-tree bench-gate bench-gate-check bench-wal build vet fmt fuzz-smoke coverage

check: ## gofmt + vet + build + full tests + race on hot packages + bench smoke
	./scripts/check.sh

ci: check ## what .github/workflows/ci.yml runs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt: ## fail if any tracked Go file is not gofmt-clean
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$out" >&2; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/graph/... ./internal/bitset/... \
		./internal/bfs/... ./internal/centrality/... ./internal/dynsky/... \
		./internal/clique/... ./internal/runctl/... ./internal/serve/... \
		./internal/sketch/... ./internal/skytree/... ./internal/wal/...
	$(GO) test -race -run 'Cancel|Ctx|Apply' ./internal/mis/ ./internal/betweenness/

bench:
	$(GO) test -run '^$$' -bench 'Fig3' -benchtime 1x .

bench-msbfs: ## smoke the bit-parallel MS-BFS engine vs the scalar sweeps
	$(GO) test -run '^$$' -bench 'MSBFS' -benchtime 1x ./internal/bfs/
	$(GO) test -run '^$$' -bench 'FirstRoundSweep' -benchtime 1x ./internal/centrality/

bench-obs: ## measure instrumentation overhead: disabled vs enabled recorder
	$(GO) test -run '^$$' -bench 'ObsOverhead' -benchtime 3x .
	$(GO) test -run '^$$' -bench 'ObsSpan' ./internal/obs/

bench-runctl: ## measure cancellation overhead: nocontext vs background vs cancellable
	$(GO) test -run '^$$' -bench 'RunctlOverhead' -benchtime 3x .
	$(GO) test -run '^$$' -bench 'CheckpointTick' ./internal/runctl/

fuzz-smoke: ## short fuzz runs on every fuzz target: graph readers, shard partitioner, skyline oracle, serving API (one -fuzz target per invocation)
	$(GO) test -run '^$$' -fuzz 'FuzzReadEdgeList' -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz 'FuzzReadBinary' -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz 'FuzzPartitionShards' -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz 'FuzzSkylineOracle' -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz 'FuzzServeRequest' -fuzztime 10s ./internal/serve/
	$(GO) test -run '^$$' -fuzz 'FuzzWALReplay' -fuzztime 10s ./internal/wal/

COVER_WARN ?= 70
COVER_FAIL ?= 60
coverage: ## internal/core statement coverage; warn under COVER_WARN%, fail under COVER_FAIL%
	$(GO) test -coverprofile=coverage.out ./internal/core/
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}')"; \
	echo "internal/core coverage: $$total%"; \
	if [ "$$(printf '%.0f' "$$total")" -lt "$(COVER_FAIL)" ]; then \
		echo "FAIL: coverage $$total% is below the $(COVER_FAIL)% floor" >&2; exit 1; \
	elif [ "$$(printf '%.0f' "$$total")" -lt "$(COVER_WARN)" ]; then \
		echo "WARN: coverage $$total% is below the $(COVER_WARN)% target" >&2; \
	fi

bench-json: ## regenerate BENCH_1/BENCH_2-style rows into bench.json
	$(GO) run ./cmd/nsbench -json bench.json -metrics

SCALE_N ?= 2000000
BENCH3  ?= bench-scale.json
bench-scale: ## million-scale pipeline: generate -> stream-convert -> mmap -> skyline (SCALE_N, BENCH3 knobs)
	$(GO) run ./cmd/nsbench -scalebench -scale-n $(SCALE_N) -json $(BENCH3)

SHARD_S ?= 1,4,16,64
BENCH5  ?= BENCH_5.json
bench-shard: ## sharded-engine sweep vs the parallel filter-phase bar on a 2M mmap snapshot (SHARD_S, SCALE_N, BENCH5 knobs)
	$(GO) run ./cmd/nsbench -shardbench -scale-n $(SCALE_N) -shards $(SHARD_S) -json $(BENCH5)

TREE_N  ?= 100000
BENCH6  ?= BENCH_6.json
bench-tree: ## layered-index grid: index-assisted top-k/subset/maintenance vs per-query recompute (TREE_N, BENCH6 knobs)
	$(GO) run ./cmd/nsbench -treebench -scale-n $(TREE_N) -json $(BENCH6)

GATE_OUT ?= bench-gate.json
bench-gate: ## regenerate the small-n gate rows (commit to scripts/bench_baseline.json to refresh the baseline)
	$(GO) run ./cmd/nsbench -gatebench -json $(GATE_OUT)

bench-gate-check: ## run the gate rows and diff them against the committed baseline (fails on >25% ratio regression)
	$(GO) run ./cmd/nsbench -gatebench -json bench-gate.json
	$(GO) run scripts/bench_compare.go scripts/bench_baseline.json bench-gate.json

BENCH7 ?= BENCH_7.json
bench-wal: ## durability sweep: WAL fsync policies, crash recovery, checkpoint cost, capped-admission overload (BENCH7 knob)
	$(GO) run ./cmd/nsbench -walbench -json $(BENCH7)

SERVE_N     ?= 100000
SERVE_SWAPS ?= 5
BENCH4      ?= bench-serve.json
bench-serve: ## serving pipeline: nsgen snapshot -> nsserve daemon -> nsload mixed traffic (SERVE_N, SERVE_SWAPS, BENCH4 knobs)
	SERVE_N=$(SERVE_N) SERVE_SWAPS=$(SERVE_SWAPS) BENCH4=$(BENCH4) ./scripts/bench_serve.sh
