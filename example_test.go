package neisky_test

import (
	"fmt"

	"neisky"
)

// The star graph: the center dominates every leaf, and among the
// mutually-equivalent leaves only the smallest ID survives — so the
// skyline is just the center.
func ExampleSkyline() {
	g := neisky.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	fmt.Println(neisky.Skyline(g))
	// Output: [0]
}

func ExampleDominates() {
	// A pendant vertex is dominated by its only neighbor.
	g := neisky.FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	fmt.Println(neisky.Dominates(g, 1, 2))
	fmt.Println(neisky.Dominates(g, 2, 1))
	// Output:
	// true
	// false
}

func ExampleComputeSkyline() {
	g := neisky.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}})
	for _, algo := range []neisky.Algorithm{neisky.FilterRefine, neisky.Base} {
		res := neisky.ComputeSkyline(g, algo, neisky.Options{})
		fmt.Println(algo, res.Skyline)
	}
	// Output:
	// FilterRefineSky [0]
	// BaseSky [0]
}

func ExampleCandidates() {
	// Lemma 1: the edge-constrained candidate set contains the skyline.
	g := neisky.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	fmt.Println(neisky.Candidates(g, neisky.Options{}))
	fmt.Println(neisky.Skyline(g))
	// Output:
	// [1 2]
	// [1 2]
}

func ExampleSkylineResult() {
	g := neisky.FromEdges(3, [][2]int32{{0, 1}, {0, 2}})
	res := neisky.SkylineResult(g, neisky.Options{})
	// Dominator[v] == v marks skyline membership; both leaves record
	// the center as their dominator.
	fmt.Println(res.Dominator)
	// Output: [0 0 0]
}

func ExampleMaxClique() {
	g := neisky.FromEdges(5, [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, // triangle
		{2, 3}, {3, 4}, // tail
	})
	res := neisky.MaxClique(g)
	fmt.Println(res.Clique)
	// Output: [0 1 2]
}

func ExampleMaximizeGroupCloseness() {
	// Two stars joined by a bridge: the two centers form the best pair.
	g := neisky.FromEdges(8, [][2]int32{
		{0, 2}, {0, 3}, {1, 4}, {1, 5}, {0, 6}, {1, 7}, {0, 1},
	})
	res := neisky.MaximizeGroupCloseness(g, 2)
	fmt.Println(res.Group)
	// Output: [0 1]
}

func ExampleNewSkylineMaintainer() {
	m := neisky.NewEmptySkylineMaintainer(3)
	m.AddEdge(0, 1)
	m.AddEdge(0, 2)
	fmt.Println(m.Skyline())
	m.RemoveEdge(0, 2)
	fmt.Println(m.SkylineSize())
	// Output:
	// [0]
	// 1
}

func ExampleApproxSkyline() {
	// With ε = 0.5 a dominator may miss half of a vertex's neighbors.
	g := neisky.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {3, 4}})
	exact := neisky.ApproxSkyline(g, 0, neisky.Options{})
	loose := neisky.ApproxSkyline(g, 0.5, neisky.Options{})
	fmt.Println(len(exact.Skyline), len(loose.Skyline))
	// Output: 2 1
}

func ExampleTwinClasses() {
	// The three leaves of a star form one twin class.
	g := neisky.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	fmt.Println(neisky.TwinClasses(g))
	// Output: [[0] [1 2 3]]
}

func ExampleBuildDistanceIndex() {
	g := neisky.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	ix := neisky.BuildDistanceIndex(g)
	fmt.Println(ix.Query(0, 3))
	// Output: 3
}

func ExampleMaxIndependentSet() {
	// The path on five vertices has the independent set {0, 2, 4}.
	g := neisky.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	fmt.Println(neisky.MaxIndependentSet(g))
	// Output: [0 2 4]
}
