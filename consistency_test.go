package neisky_test

import (
	"testing"

	"neisky"
	"neisky/internal/core"
	"neisky/internal/scjoin"
)

// TestDatasetConsistency runs every skyline implementation on every
// built-in dataset (scaled down) and demands byte-identical skylines —
// the integration-level version of the per-package oracle tests.
func TestDatasetConsistency(t *testing.T) {
	for _, name := range neisky.DatasetNames() {
		g, err := neisky.LoadDataset(name, 0.15)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := core.FilterRefineSky(g, core.Options{}).Skyline
		impls := map[string][]int32{
			"BaseSky":  core.BaseSky(g, core.Options{}).Skyline,
			"Base2Hop": core.Base2Hop(g, core.Options{}).Skyline,
			"BaseCSet": core.BaseCSet(g, core.Options{}).Skyline,
			"LC-Join":  scjoin.Skyline(g, core.Options{}).Skyline,
			"TT-Join":  scjoin.TrieSkyline(g, core.Options{}).Skyline,
			"Parallel": core.ParallelFilterRefineSky(g, core.Options{}, 4).Skyline,
			"Approx0":  core.ApproxSkyline(g, 0, core.Options{}).Skyline,
			"PartialOrder": core.AllDominations(g, core.Options{}).
				Skyline(),
			"Pendant": core.FilterRefineSky(g, core.Options{PendantFilter: true}).Skyline,
			"FullScan": core.FilterRefineSky(g,
				core.Options{FullTwoHopScan: true}).Skyline,
		}
		for label, got := range impls {
			if !core.EqualSkylines(got, want) {
				t.Fatalf("%s: %s skyline (%d) differs from FilterRefineSky (%d)",
					name, label, len(got), len(want))
			}
		}
	}
}

// TestDatasetSkylineStability pins the skyline sizes of the default
// datasets so accidental generator or algorithm drift is caught.
func TestDatasetSkylineStability(t *testing.T) {
	expect := map[string]struct{ n, r int }{
		"karate": {34, 15},
		"fig1":   {15, 8},
	}
	for name, want := range expect {
		g, err := neisky.LoadDataset(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		r := neisky.Skyline(g)
		if g.N() != want.n || len(r) != want.r {
			t.Fatalf("%s: n=%d |R|=%d, want n=%d |R|=%d",
				name, g.N(), len(r), want.n, want.r)
		}
	}
}
